// Query workload and content model. The paper drives every peer at 0.3
// queries/minute (derived from the Sripanidkulchai Gnutella trace); queried
// objects follow a Zipf popularity distribution and are replicated across
// peers. Object placement is stateless — membership is a deterministic hash
// of (peer, object) against the object's replication ratio — so churn never
// needs placement bookkeeping and runs stay reproducible.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "overlay/overlay_network.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace ace {

using ObjectId = std::uint32_t;

struct CatalogConfig {
  std::size_t object_count = 1000;
  // Zipf exponent for query popularity.
  double zipf_exponent = 0.8;
  // Replication ratio of the most popular object (fraction of peers that
  // hold it); rank k holds base_replication / (k+1)^replication_skew.
  double base_replication = 0.05;
  double replication_skew = 0.5;
  // Floor so every object exists somewhere with non-trivial probability.
  double min_replication = 0.002;
  std::uint64_t placement_seed = 0x5eedu;
};

// Content catalog: answers "does peer p hold object o?" and samples query
// targets by popularity.
class ObjectCatalog {
 public:
  explicit ObjectCatalog(CatalogConfig config);

  std::size_t object_count() const noexcept { return replication_.size(); }

  // Popularity-weighted object draw (Zipf over ranks).
  ObjectId sample_object(Rng& rng) const;

  // Replication ratio of object o.
  double replication(ObjectId o) const;

  // Deterministic membership: hash(peer, object, seed) < replication(o).
  bool holds(PeerId peer, ObjectId o) const;

  // All holders among `peers` (helper for tests/examples).
  std::vector<PeerId> holders_among(std::span<const PeerId> peers,
                                    ObjectId o) const;

 private:
  CatalogConfig config_;
  ZipfDistribution popularity_;
  std::vector<double> replication_;
};

struct WorkloadConfig {
  // Per-peer query rate (paper: 0.3 queries/minute = 0.005/s).
  double queries_per_peer_per_s = 0.3 / 60.0;
};

// Poisson query generator over the online population: global inter-arrival
// is exponential with rate N_online * per-peer rate, and each query source
// is a uniformly random online peer — equivalent to independent per-peer
// Poisson processes, with O(1) pending events.
class QueryWorkload {
 public:
  // The callback runs for each query: (time, source peer, object).
  using QueryCallback = std::function<void(SimTime, PeerId, ObjectId)>;

  // Forks its own internal stream from `rng` at construction and never
  // touches it again: the (time, source, object) query sequence depends
  // only on the fork point and the online population size, not on what
  // other components draw from the source generator afterwards.
  QueryWorkload(OverlayNetwork& overlay, const ObjectCatalog& catalog,
                Simulator& sim, Rng& rng, WorkloadConfig config,
                QueryCallback callback);

  // Begins issuing queries.
  void start();
  void stop() noexcept { stopped_ = true; }

  std::size_t queries_issued() const noexcept { return issued_; }

 private:
  void schedule_next();

  OverlayNetwork* overlay_;
  const ObjectCatalog* catalog_;
  Simulator* sim_;
  Rng rng_;
  WorkloadConfig config_;
  QueryCallback callback_;
  std::size_t issued_ = 0;
  bool stopped_ = false;
};

}  // namespace ace
