#include "overlay/churn.h"

#include <stdexcept>

namespace ace {

ChurnDriver::ChurnDriver(OverlayNetwork& overlay, Simulator& sim, Rng& rng,
                         ChurnConfig config)
    : overlay_{&overlay},
      sim_{&sim},
      lifetime_rng_{rng.fork()},
      topology_rng_{rng.fork()},
      config_{config} {
  if (!(config_.mean_lifetime_s > 0))
    throw std::invalid_argument{"ChurnDriver: mean lifetime must be > 0"};
  for (PeerId p{0}; p < overlay_->peer_count(); ++p)
    if (!overlay_->is_online(p)) offline_pool_.push_back(p);
}

double ChurnDriver::draw_lifetime() {
  if (config_.lifetime_variance > 0)
    return lognormal_mean_var(lifetime_rng_, config_.mean_lifetime_s,
                              config_.lifetime_variance);
  return exponential(lifetime_rng_, config_.mean_lifetime_s);
}

void ChurnDriver::start() {
  for (PeerId p{0}; p < overlay_->peer_count(); ++p)
    if (overlay_->is_online(p)) schedule_departure(p);
}

void ChurnDriver::schedule_departure(PeerId p) {
  sim_->after(draw_lifetime(), [this, p] { depart(p); });
}

void ChurnDriver::depart(PeerId p) {
  if (!overlay_->is_online(p)) return;  // already gone (defensive)
  const std::vector<PeerId> dropped =
      overlay_->leave(p, config_.repair_min_degree, topology_rng_);
  ++leaves_;
  if (on_leave) on_leave(p, dropped);
  offline_pool_.push_back(p);

  // Constant population: one replacement joins immediately.
  const std::size_t slot = topology_rng_.next_below(offline_pool_.size());
  const PeerId fresh = offline_pool_[slot];
  offline_pool_[slot] = offline_pool_.back();
  offline_pool_.pop_back();
  overlay_->join(fresh, config_.join_degree, topology_rng_);
  ++joins_;
  if (on_join) on_join(fresh);
  schedule_departure(fresh);
}

}  // namespace ace
