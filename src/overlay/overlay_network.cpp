#include "overlay/overlay_network.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "oracle/cost_oracle.h"
#include "util/check.h"

namespace ace {

std::uint64_t SnapshotIdentity::next() noexcept {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

OverlayNetwork::OverlayNetwork(const PhysicalNetwork& physical)
    : physical_{&physical} {}

OverlayNetwork::OverlayNetwork(const PhysicalNetwork& physical,
                               const Graph& logical,
                               std::span<const HostId> hosts)
    : physical_{&physical} {
  if (hosts.size() != logical.node_count())
    throw std::invalid_argument{
        "OverlayNetwork: hosts.size() != overlay node count"};
  for (const HostId h : hosts) add_peer(h, /*online=*/true);
  // ace-id: boundary(pre-generated logical graphs index peers by node id)
  for (const Edge& e : logical.edges()) connect(PeerId{e.u}, PeerId{e.v});
}

void OverlayNetwork::check_peer(PeerId p) const {
  if (p >= peer_hosts_.size())
    throw std::out_of_range{"OverlayNetwork: peer id out of range"};
}

PeerId OverlayNetwork::add_peer(HostId host, bool online) {
  if (host >= physical_->host_count())
    throw std::out_of_range{"OverlayNetwork: host out of range"};
  peer_hosts_.push_back(host);
  peer_online_.push_back(online ? 1 : 0);
  const NodeId node = logical_.add_node();
  (void)node;
  if (online) ++online_count_;
  versions_.push_back(TopologyVersion{});
  ++global_version_;  // node set changed: whole-overlay snapshots are stale
  // ace-id: boundary(a new peer's id is its slot in the peer table)
  return PeerId{static_cast<std::uint32_t>(peer_hosts_.size() - 1)};
}

HostId OverlayNetwork::host_of(PeerId p) const {
  check_peer(p);
  return peer_hosts_[p];
}

bool OverlayNetwork::is_online(PeerId p) const {
  check_peer(p);
  return peer_online_[p] != 0;
}

Weight OverlayNetwork::peer_delay(PeerId a, PeerId b) const {
  check_peer(a);
  check_peer(b);
  return physical_->delay(peer_hosts_[a], peer_hosts_[b]);
}

// ace-hot
Weight OverlayNetwork::peer_cost_estimate(PeerId a, PeerId b) const {
  check_peer(a);
  check_peer(b);
  if (cost_oracle_ == nullptr)  // exact mode: identical to peer_delay
    return physical_->delay(peer_hosts_[a], peer_hosts_[b]);
  return cost_oracle_->delay(peer_hosts_[a], peer_hosts_[b]);
}

Weight OverlayNetwork::probe_estimate(PeerId a, PeerId b) const {
  if (cost_oracle_ == nullptr) return link_cost(a, b);
  if (!are_connected(a, b))
    throw std::invalid_argument{"OverlayNetwork: peers not connected"};
  const Weight est = peer_cost_estimate(a, b);
  // Same floor connect() applies to zero-delay links, so recorded beliefs
  // stay positive whichever path produced them.
  return est > 0 ? est : 1e-6;
}

bool OverlayNetwork::connect(PeerId a, PeerId b) {
  check_peer(a);
  check_peer(b);
  if (a == b || !peer_online_[a] || !peer_online_[b]) return false;
  // Estimated pricing (million-host benches): the oracle's O(K) belief
  // stands in for the unpayable exact Dijkstra row; otherwise ground truth.
  const Weight cost = estimated_link_pricing_ && cost_oracle_ != nullptr
                          ? cost_oracle_->delay(peer_hosts_[a], peer_hosts_[b])
                          : peer_delay(a, b);
  // Co-located hosts would yield a zero-weight edge; clamp to a small
  // positive value so graph invariants (positive weights) hold.
  // ace-lint: allow(overlay-adjacency-write): the version-bumping mutator.
  if (!logical_.add_edge(a.value(), b.value(), cost > 0 ? cost : 1e-6))
    return false;
  bump(a);
  bump(b);
  return true;
}

bool OverlayNetwork::disconnect(PeerId a, PeerId b) {
  check_peer(a);
  check_peer(b);
  // ace-lint: allow(overlay-adjacency-write): the version-bumping mutator.
  if (!logical_.remove_edge(a.value(), b.value())) return false;
  bump(a);
  bump(b);
  return true;
}

bool OverlayNetwork::are_connected(PeerId a, PeerId b) const {
  check_peer(a);
  check_peer(b);
  return logical_.has_edge(a.value(), b.value());
}

Weight OverlayNetwork::link_cost(PeerId a, PeerId b) const {
  const auto w = logical_.edge_weight(a.value(), b.value());
  if (!w) throw std::invalid_argument{"OverlayNetwork: peers not connected"};
  return w.value();
}

std::span<const Neighbor> OverlayNetwork::neighbors(PeerId p) const {
  check_peer(p);
  return logical_.neighbors(p.value());
}

std::size_t OverlayNetwork::degree(PeerId p) const {
  check_peer(p);
  return logical_.degree(p.value());
}

std::vector<PeerId> OverlayNetwork::online_peers() const {
  std::vector<PeerId> out;
  out.reserve(online_count_);
  for (PeerId p{0}; p < peer_online_.size(); ++p)
    if (peer_online_[p]) out.push_back(p);
  return out;
}

PeerId OverlayNetwork::random_online_peer(Rng& rng, PeerId exclude) const {
  const std::size_t eligible =
      online_count_ -
      ((exclude != kInvalidPeer && exclude < peer_online_.size() &&
        peer_online_[exclude])
           ? 1
           : 0);
  if (eligible == 0)
    throw std::logic_error{"OverlayNetwork: no eligible online peer"};
  // Rejection sampling over the peer table: online fraction is high in all
  // our workloads, so this terminates quickly in expectation.
  for (;;) {
    // ace-id: boundary(uniform draw over the peer table's slot range)
    const PeerId p{
        static_cast<std::uint32_t>(rng.next_below(peer_online_.size()))};
    if (p != exclude && peer_online_[p]) return p;
  }
}

std::size_t OverlayNetwork::join(PeerId p, std::size_t target_degree,
                                 Rng& rng) {
  check_peer(p);
  if (!peer_online_[p]) {
    peer_online_[p] = 1;
    ++online_count_;
    bump(p);
  }
  if (online_count_ <= 1) return 0;
  std::size_t created = 0;
  std::size_t attempts = 0;
  const std::size_t max_attempts = 20 * (target_degree + 1);
  while (created < target_degree && attempts++ < max_attempts) {
    const PeerId q = random_online_peer(rng, p);
    if (connect(p, q)) ++created;
  }
  return created;
}

std::vector<PeerId> OverlayNetwork::leave(PeerId p,
                                          std::size_t repair_min_degree,
                                          Rng& rng) {
  check_peer(p);
  std::vector<PeerId> dropped;
  for (const auto& n : logical_.neighbors(p.value()))
    dropped.push_back(peer_of(n));
  // ace-lint: allow(overlay-adjacency-write): the version-bumping mutator.
  logical_.isolate(p.value());
  if (!dropped.empty() || peer_online_[p]) bump(p);
  for (const PeerId q : dropped) bump(q);
  if (peer_online_[p]) {
    peer_online_[p] = 0;
    --online_count_;
  }
  // Repair: orphaned neighbors reconnect from their host cache (modeled as
  // a random online peer) until they regain the minimum degree.
  for (const PeerId q : dropped) {
    std::size_t attempts = 0;
    while (peer_online_[q] && logical_.degree(q.value()) < repair_min_degree &&
           online_count_ > 1 && attempts++ < 50) {
      const PeerId r = random_online_peer(rng, q);
      connect(q, r);
    }
  }
  return dropped;
}

void OverlayNetwork::debug_validate() const {
  ACE_CHECK_EQ(logical_.node_count(), peer_hosts_.size())
      << " — logical graph and peer table disagree";
  ACE_CHECK_EQ(peer_hosts_.size(), peer_online_.size())
      << " — SoA peer columns disagree";
  logical_.debug_validate();
  std::size_t online = 0;
  for (PeerId p{0}; p < peer_hosts_.size(); ++p) {
    ACE_CHECK_LT(peer_hosts_[p], physical_->host_count())
        << " — peer " << p << " attached to nonexistent host";
    if (peer_online_[p]) {
      ++online;
    } else {
      ACE_CHECK_EQ(logical_.degree(p.value()), 0u)
          << " — offline peer " << p << " still holds overlay links";
    }
  }
  ACE_CHECK_EQ(online, online_count_) << " — online_count out of sync";
}

void OverlayNetwork::digest_into(Fnv1a& digest) const {
  digest.update(static_cast<std::uint64_t>(peer_hosts_.size()));
  digest.update(static_cast<std::uint64_t>(online_count_));
  // Interleaved (host, online) per peer — the exact byte stream the AoS
  // peer table fed, so the pinned golden digest is unchanged by the SoA
  // split.
  for (PeerId p{0}; p < peer_hosts_.size(); ++p) {
    digest.update(peer_hosts_[p]);
    digest.update(static_cast<std::uint64_t>(peer_online_[p] ? 1 : 0));
  }
  logical_.digest_into(digest);
}

double OverlayNetwork::mean_online_degree() const {
  if (online_count_ == 0) return 0.0;
  std::size_t total = 0;
  for (PeerId p{0}; p < peer_online_.size(); ++p)
    if (peer_online_[p]) total += logical_.degree(p.value());
  return static_cast<double>(total) / static_cast<double>(online_count_);
}

std::vector<HostId> assign_hosts_uniform(const PhysicalNetwork& physical,
                                         std::size_t peers, Rng& rng) {
  if (peers > physical.host_count())
    throw std::invalid_argument{"assign_hosts_uniform: more peers than hosts"};
  std::vector<HostId> hosts;
  hosts.reserve(peers);
  for (const std::size_t i : rng.sample_indices(physical.host_count(), peers))
    // ace-id: boundary(uniform sample over the physical topology's node range)
    hosts.push_back(HostId{static_cast<std::uint32_t>(i)});
  return hosts;
}

}  // namespace ace
