// Churn driver reproducing the paper's dynamic environment (§4.3): peer
// lifetimes follow a distribution with mean 10 minutes and variance equal
// to half the mean; when a peer's lifetime expires it leaves, and a
// replacement offline peer joins immediately, keeping the online population
// constant (the paper "randomly picks up (turns on) the same number of
// peers ... to join the overlay").
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "overlay/overlay_network.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace ace {

struct ChurnConfig {
  // Mean lifetime in seconds (paper: 10 minutes).
  double mean_lifetime_s = 600.0;
  // Variance of the lifetime distribution; the paper picks variance =
  // mean/2. <= 0 selects an exponential lifetime with the same mean.
  double lifetime_variance = 300.0;
  // Connections a joining peer opens (bootstrap degree).
  std::size_t join_degree = 4;
  // Orphaned neighbors reconnect until they have this many links.
  std::size_t repair_min_degree = 2;
};

class ChurnDriver {
 public:
  // Every peer in `overlay` participates: online peers get a residual
  // lifetime now; offline peers form the replacement pool. `overlay` and
  // `sim` must outlive the driver. The driver forks its own internal
  // streams from `rng` at construction and never touches it again, so
  // churn activity cannot perturb any other component sharing the source
  // generator.
  ChurnDriver(OverlayNetwork& overlay, Simulator& sim, Rng& rng,
              ChurnConfig config);

  // Arms a departure event for every currently-online peer. Call once
  // before running the simulation.
  void start();

  // Total joins/leaves executed so far.
  std::size_t joins() const noexcept { return joins_; }
  std::size_t leaves() const noexcept { return leaves_; }

  // Invoked after each join with the peer id (lets the ACE engine seed
  // state for fresh peers).
  std::function<void(PeerId)> on_join;
  // Invoked after each leave with the peer id and the neighbors the
  // departure disconnected. Listeners (the ACE engine) must see the
  // dropped links or their forwarding state for those peers goes stale —
  // the invariant auditors treat a surviving stale entry as fatal.
  std::function<void(PeerId, std::span<const PeerId>)> on_leave;

  // Draws one lifetime from the configured distribution (exposed for
  // tests/benches to verify the distribution shape).
  double draw_lifetime();

 private:
  void schedule_departure(PeerId p);
  void depart(PeerId p);

  OverlayNetwork* overlay_;
  Simulator* sim_;
  // Independent owned streams: lifetimes on one, topology choices (join
  // targets, repair links) on the other — repair decisions cannot shift
  // the departure schedule.
  Rng lifetime_rng_;
  Rng topology_rng_;
  ChurnConfig config_;
  std::vector<PeerId> offline_pool_;
  std::size_t joins_ = 0;
  std::size_t leaves_ = 0;
};

}  // namespace ace
