// Logical overlay substrate. Peers attach to physical hosts; logical links
// are weighted with the physical shortest-path delay between the endpoints'
// hosts — the quantity ACE probes and optimizes. Join/leave follows the
// Gnutella bootstrap mechanism the paper describes: a joining peer obtains
// addresses of existing peers (bootstrap/host cache) and connects to a
// handful of them, which is exactly what creates the mismatch problem.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "net/physical_network.h"
#include "util/rng.h"
#include "util/strong_id.h"

namespace ace {

class CostOracle;

// PeerId / kInvalidPeer live in util/strong_id.h: peers are their own id
// domain, distinct from hosts and from raw graph node indices.

// A Neighbor from the overlay's logical graph carries the raw kernel node
// index, which in that graph IS the peer id — this is the one sanctioned
// read-side conversion out of the logical adjacency.
inline PeerId peer_of(const Neighbor& n) noexcept {
  // ace-id: boundary(logical-graph node index is the peer id by construction)
  return PeerId{n.node};
}

// Process-unique identity token for snapshot caches. Every construction —
// including copy and move — draws a fresh id, so an (identity, version)
// pair names one exact topology state: a recycled address or a copied
// overlay can never alias a cached snapshot. The id is simulator-internal
// cache bookkeeping; it never reaches results or digests, so the
// process-wide counter is not a determinism hazard.
class SnapshotIdentity {
 public:
  SnapshotIdentity() noexcept : id_{next()} {}
  SnapshotIdentity(const SnapshotIdentity&) noexcept : id_{next()} {}
  SnapshotIdentity& operator=(const SnapshotIdentity&) noexcept {
    id_ = next();  // assigned-over object holds wholesale new content
    return *this;
  }
  std::uint64_t id() const noexcept { return id_; }

 private:
  static std::uint64_t next() noexcept;
  std::uint64_t id_;
};

class OverlayNetwork {
 public:
  // `physical` must outlive the overlay (non-owning).
  explicit OverlayNetwork(const PhysicalNetwork& physical);

  // Builds an overlay from a pre-generated logical graph: peer i attaches
  // to hosts[i] and every logical edge is installed with its physical
  // delay weight. hosts.size() must equal overlay.node_count().
  OverlayNetwork(const PhysicalNetwork& physical, const Graph& logical,
                 std::span<const HostId> hosts);

  const PhysicalNetwork& physical() const noexcept { return *physical_; }
  const Graph& logical() const noexcept { return logical_; }

  std::size_t peer_count() const noexcept { return peer_hosts_.size(); }
  std::size_t online_count() const noexcept { return online_count_; }

  // --- topology versioning --------------------------------------------
  //
  // Monotone dirty-tracking counters consumed by the incremental engine
  // (closure/tree caches) and the query-path adjacency snapshot. Every
  // mutation that can change what a closure or a query would observe —
  // connect/disconnect (link set and link costs), join/leave (online
  // flags + repair links), add_peer (node set) — bumps the per-peer
  // counter of each affected endpoint and the global counter. Versions
  // are simulator bookkeeping only: they are NOT part of digest_into(),
  // so the golden state digest is independent of cache behaviour.

  // Version of p's local view: bumped whenever p's link set, a link cost
  // incident to p, or p's online flag changes.
  TopologyVersion topology_version(PeerId p) const {
    check_peer(p);
    return versions_[p];
  }

  // Bumped on every mutation anywhere in the overlay (including
  // add_peer). Cheap staleness check for whole-overlay snapshots.
  std::uint64_t global_version() const noexcept { return global_version_; }

  // Pair (snapshot_identity(), global_version()) uniquely names this
  // overlay's current topology state across the whole process — the cache
  // key of the query-path adjacency snapshot (search/flooding.h).
  std::uint64_t snapshot_identity() const noexcept { return identity_.id(); }

  // Registers a peer (initially offline unless `online`).
  PeerId add_peer(HostId host, bool online = true);

  HostId host_of(PeerId p) const;
  bool is_online(PeerId p) const;

  // Logical-link delay between two peers' hosts (regardless of a link).
  // This is ground truth: it always queries the physical network, never an
  // attached oracle. Link weights, transport wire latency, and measured
  // query traffic are priced with this.
  Weight peer_delay(PeerId a, PeerId b) const;

  // --- cost oracle ------------------------------------------------------
  //
  // What a peer *believes* a pairwise cost to be when it decides (cost
  // tables, closure pair probes, phase-3 candidate evaluation, baseline
  // rewiring). With no oracle attached (the default, and the `exact`
  // mode), beliefs equal ground truth and every code path below is
  // bit-identical to the pre-oracle build. An attached approximate oracle
  // substitutes its estimate on the decision path only — the network
  // itself keeps charging true delays, which is exactly the regime the
  // oracle models: peers act on estimated proximity, reality bills them.

  // Attaches (or clears, with nullptr) the estimation oracle. Non-owning;
  // the oracle must outlive the overlay or be cleared first.
  void set_cost_oracle(const CostOracle* oracle) noexcept {
    cost_oracle_ = oracle;
  }
  const CostOracle* cost_oracle() const noexcept { return cost_oracle_; }

  // Estimated delay between two peers' hosts: the attached oracle's
  // estimate, or exact peer_delay when none is attached.
  Weight peer_cost_estimate(PeerId a, PeerId b) const;

  // What a probe of an existing link reports: the recorded link cost when
  // no oracle is attached (bit-identical legacy path), else the oracle's
  // estimate clamped to the same 1e-6 floor connect() applies to weights.
  Weight probe_estimate(PeerId a, PeerId b) const;

  // Prices links created by subsequent connect() calls with the attached
  // oracle's estimate instead of the exact physical delay. Million-host
  // benches opt in: one exact delay is a per-source Dijkstra row over the
  // whole physical graph — unpayable once per overlay link at 10^6 hosts —
  // while a landmark estimate is O(K). The default (off) keeps ground-truth
  // pricing and the wire-vs-belief split for every figure-producing run.
  // No-op without an attached oracle.
  void set_estimated_link_pricing(bool enabled) noexcept {
    estimated_link_pricing_ = enabled;
  }

  // Connects two online peers; the link weight is the physical delay.
  // Returns false when already connected, identical, or either offline.
  bool connect(PeerId a, PeerId b);
  bool disconnect(PeerId a, PeerId b);
  bool are_connected(PeerId a, PeerId b) const;
  Weight link_cost(PeerId a, PeerId b) const;  // throws if not connected

  std::span<const Neighbor> neighbors(PeerId p) const;
  std::size_t degree(PeerId p) const;

  // Peers currently online, ascending id.
  std::vector<PeerId> online_peers() const;

  // Uniformly random online peer (excluding `exclude` when valid); requires
  // at least one eligible peer.
  PeerId random_online_peer(Rng& rng, PeerId exclude = kInvalidPeer) const;

  // --- churn primitives -----------------------------------------------

  // Brings p online and connects it to `target_degree` random online peers
  // (bootstrap join). Returns the number of links created.
  std::size_t join(PeerId p, std::size_t target_degree, Rng& rng);

  // Takes p offline, dropping all its links. Neighbors left beneath
  // `repair_min_degree` reconnect to random online peers (the "reconnect
  // from the host cache" behaviour). Returns the disconnected neighbors.
  std::vector<PeerId> leave(PeerId p, std::size_t repair_min_degree, Rng& rng);

  // Mean logical degree over online peers.
  double mean_online_degree() const;

  // Invariant auditor (ACE_CHECK-fatal): logical-graph symmetry and no
  // self-loops (via Graph::debug_validate), peer/node count agreement,
  // hosts within the physical topology, online_count consistency, and no
  // links incident to offline peers.
  void debug_validate() const;

  // Digest of the peer table (host attachment, online flags) and the
  // logical adjacency with link costs — the overlay component of the
  // engine's phase-boundary StateDigest.
  void digest_into(Fnv1a& digest) const;

 private:
  void check_peer(PeerId p) const;
  void bump(PeerId p) {
    ++versions_[p];
    ++global_version_;
  }

  // ace-digest: exempt(physical_): borrowed immutable substrate; mapping is
  // digested through each peer's host id in the peers_ records.
  const PhysicalNetwork* physical_;
  // ace-digest: exempt(cost_oracle_): borrowed frozen estimator; when one
  // is attached the engine digests it as its own "cost-oracle" StateDigest
  // component (and when none is, the digest must equal pre-oracle builds).
  const CostOracle* cost_oracle_ = nullptr;
  // ace-digest: exempt(estimated_link_pricing_): configuration, not state;
  // the weights it produces are digested through the logical adjacency.
  bool estimated_link_pricing_ = false;
  // Structure-of-arrays peer table (ROADMAP item 1): the hot scans — the
  // rejection-sampling source draw, engine cache-validity sweeps, the
  // digest walk — touch only the field they need instead of dragging whole
  // records through cache, and a million-peer online bitmap is one byte
  // per peer. uint8_t, not vector<bool>: IdVector indexing returns real
  // references.
  IdVector<PeerId, HostId> peer_hosts_;
  IdVector<PeerId, std::uint8_t> peer_online_;
  Graph logical_;
  // ace-digest: exempt(versions_): cache-invalidation counters, not
  // protocol state — two runs with different cache schedules may differ
  // here while the adjacency (which IS digested) is identical.
  IdVector<PeerId, TopologyVersion> versions_;
  // ace-digest: exempt(global_version_): same cache-invalidation role as
  // versions_; monotone counter with no protocol meaning.
  std::uint64_t global_version_ = 0;
  // ace-digest: exempt(identity_): snapshot-identity token for stale-handle
  // detection (debug aid); carries no simulation state.
  SnapshotIdentity identity_;
  std::size_t online_count_ = 0;
};

// Host assignment: picks `peers` distinct hosts uniformly at random from the
// physical topology (peers <= host_count).
std::vector<HostId> assign_hosts_uniform(const PhysicalNetwork& physical,
                                         std::size_t peers, Rng& rng);

}  // namespace ace
