#include "overlay/workload.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ace {

ObjectCatalog::ObjectCatalog(CatalogConfig config)
    : config_{config},
      popularity_{config.object_count, config.zipf_exponent} {
  if (config.object_count == 0)
    throw std::invalid_argument{"ObjectCatalog: object_count must be > 0"};
  replication_.resize(config.object_count);
  for (std::size_t k = 0; k < config.object_count; ++k) {
    const double r = config.base_replication /
                     std::pow(static_cast<double>(k + 1),
                              config.replication_skew);
    replication_[k] = std::clamp(r, config.min_replication, 1.0);
  }
}

ObjectId ObjectCatalog::sample_object(Rng& rng) const {
  return static_cast<ObjectId>(popularity_(rng));
}

double ObjectCatalog::replication(ObjectId o) const {
  if (o >= replication_.size())
    throw std::out_of_range{"ObjectCatalog: object out of range"};
  return replication_[o];
}

bool ObjectCatalog::holds(PeerId peer, ObjectId o) const {
  const double r = replication(o);
  std::uint64_t state = config_.placement_seed;
  state ^= (static_cast<std::uint64_t>(peer.value()) << 32) ^ o;
  const std::uint64_t h = splitmix64(state);
  return static_cast<double>(h >> 11) * 0x1.0p-53 < r;
}

std::vector<PeerId> ObjectCatalog::holders_among(std::span<const PeerId> peers,
                                                 ObjectId o) const {
  std::vector<PeerId> out;
  for (const PeerId p : peers)
    if (holds(p, o)) out.push_back(p);
  return out;
}

QueryWorkload::QueryWorkload(OverlayNetwork& overlay,
                             const ObjectCatalog& catalog, Simulator& sim,
                             Rng& rng, WorkloadConfig config,
                             QueryCallback callback)
    : overlay_{&overlay},
      catalog_{&catalog},
      sim_{&sim},
      rng_{rng.fork()},
      config_{config},
      callback_{std::move(callback)} {
  if (!(config_.queries_per_peer_per_s > 0))
    throw std::invalid_argument{"QueryWorkload: query rate must be > 0"};
  if (!callback_)
    throw std::invalid_argument{"QueryWorkload: callback required"};
}

void QueryWorkload::start() { schedule_next(); }

void QueryWorkload::schedule_next() {
  const std::size_t online = overlay_->online_count();
  if (online == 0) {
    // No peers: retry after an idle second.
    sim_->after(1.0, [this] {
      if (!stopped_) schedule_next();
    });
    return;
  }
  const double rate =
      config_.queries_per_peer_per_s * static_cast<double>(online);
  const double gap = exponential(rng_, 1.0 / rate);
  sim_->after(gap, [this] {
    if (stopped_) return;
    if (overlay_->online_count() > 0) {
      const PeerId source = overlay_->random_online_peer(rng_);
      const ObjectId object = catalog_->sample_object(rng_);
      ++issued_;
      callback_(sim_->now(), source, object);
    }
    schedule_next();
  });
}

}  // namespace ace
