// Vivaldi-style coordinate oracle: every host carries a point in a
// D-dimensional Euclidean space, and a pairwise delay is estimated as the
// distance between the two points. Real Vivaldi refines coordinates from
// whatever RTT samples the live traffic happens to produce; this
// reproduction needs bitwise-reproducible runs, so refinement follows a
// FIXED probe schedule drawn once from Rng::stream(seed, "oracle"):
// R rounds, each round picking P pivot hosts, computing one exact Dijkstra
// row per pivot, and spring-relaxing every host's coordinate toward
// distances that match the measured delays (step size decays 0.25/(1+r)).
// The schedule — not wall-clock measurement noise — is the only source of
// randomness, so the same (topology, config, seed) always freezes the same
// embedding. O(D*N) floats of estimation state; R*P exact rows at build.
#pragma once

#include <cstdint>
#include <vector>

#include "net/physical_network.h"
#include "oracle/cost_oracle.h"

namespace ace {

struct VivaldiConfig {
  std::size_t dims = 4;
  std::size_t rounds = 12;
  std::size_t pivots_per_round = 8;
};

class VivaldiOracle final : public CostOracle {
 public:
  // Freezes the embedding at construction: seeded coordinate init, then the
  // deterministic pivot-probe schedule. `physical` must outlive the oracle.
  // Throws std::invalid_argument for zero dims/rounds/pivots.
  VivaldiOracle(const PhysicalNetwork& physical, const VivaldiConfig& config,
                std::uint64_t seed);

  // Hot path (tagged ace-hot at the definition): allocation-free.
  Weight delay(HostId a, HostId b) const override;

  void delays_from(HostId source, std::span<const HostId> targets,
                   std::span<float> out) const override;

  OracleKind kind() const noexcept override { return OracleKind::kVivaldi; }
  std::string spec() const override;
  std::size_t memory_bytes() const noexcept override;
  void digest_into(Fnv1a& digest) const override;

  const VivaldiConfig& config() const noexcept { return config_; }
  // Frozen embedding of one host, exposed for tests and the scale bench.
  std::span<const float> coordinates(HostId host) const;

 private:
  // ace-digest: exempt(config_): folded into state_digest_ at
  // construction; all members below are frozen from then on.
  VivaldiConfig config_;
  // ace-digest: exempt(host_count_): folded into state_digest_ at
  // construction (frozen).
  std::size_t host_count_;
  // Host-major: coordinates of host h are coords_[h*D .. h*D+D).
  // ace-digest: exempt(coords_): folded into state_digest_ at construction
  // (frozen); caching keeps digest_into O(1) instead of O(D*N).
  std::vector<float> coords_;
  std::uint64_t state_digest_;
};

}  // namespace ace
