#include "oracle/exact_oracle.h"

#include <stdexcept>

namespace ace {

void ExactOracle::delays_from(HostId source, std::span<const HostId> targets,
                              std::span<float> out) const {
  if (out.size() != targets.size())
    throw std::invalid_argument{
        "ExactOracle::delays_from: out.size() != targets.size()"};
  // The first query computes/caches the source row; the rest are row hits.
  for (std::size_t i = 0; i < targets.size(); ++i)
    out[i] = static_cast<float>(physical_->delay(source, targets[i]));
}

void ExactOracle::digest_into(Fnv1a& digest) const {
  // Exact estimation state is the topology itself (immutable, digested by
  // whoever owns it); the oracle contributes only its identity.
  digest.update(std::string_view{"oracle-exact"});
  digest.update(static_cast<std::uint64_t>(physical_->host_count()));
}

}  // namespace ace
