#include "oracle/landmark_oracle.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace ace {

std::vector<std::vector<Weight>> landmark_coordinates(
    const PhysicalNetwork& physical, std::span<const HostId> peer_hosts,
    std::span<const HostId> landmark_hosts) {
  std::vector<std::vector<Weight>> coords(peer_hosts.size());
  for (std::size_t i = 0; i < peer_hosts.size(); ++i) {
    coords[i].reserve(landmark_hosts.size());
    for (const HostId lm : landmark_hosts)
      coords[i].push_back(physical.delay(peer_hosts[i], lm));
  }
  return coords;
}

double coordinate_distance(std::span<const Weight> a,
                           std::span<const Weight> b) {
  if (a.size() != b.size())
    throw std::invalid_argument{"coordinate_distance: dimension mismatch"};
  double sum = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

// ace-hot
Weight triangulated_delay(std::span<const float> a, std::span<const float> b) {
  float lower = 0.0f;
  float upper = a[0] + b[0];
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float diff = a[i] > b[i] ? a[i] - b[i] : b[i] - a[i];
    const float sum = a[i] + b[i];
    if (diff > lower) lower = diff;
    if (sum < upper) upper = sum;
  }
  // Inconsistent coordinates (possible under triangle-inequality violations
  // in the embedding) can cross the bounds; keep the interval well-formed.
  if (upper < lower) upper = lower;
  return 0.5 * (static_cast<Weight>(lower) + static_cast<Weight>(upper));
}

LandmarkOracle::LandmarkOracle(const PhysicalNetwork& physical,
                               std::size_t landmarks, std::uint64_t seed)
    : host_count_{physical.host_count()} {
  if (landmarks == 0)
    throw std::invalid_argument{"LandmarkOracle: need at least one landmark"};
  if (landmarks > host_count_)
    throw std::invalid_argument{
        "LandmarkOracle: more landmarks than hosts"};

  Rng rng = Rng::stream(seed, "oracle");
  landmarks_.reserve(landmarks);
  for (const std::size_t i : rng.sample_indices(host_count_, landmarks))
    // ace-id: boundary(sampled indices range over the physical host table)
    landmarks_.push_back(HostId{static_cast<std::uint32_t>(i)});

  // Landmark-first fill order: delay(lm, h) resolves through the landmark's
  // row, so construction touches exactly K Dijkstra rows — never one per
  // host. That is the whole memory story of this oracle.
  const std::size_t k = landmarks_.size();
  coords_.resize(host_count_ * k);
  for (std::size_t j = 0; j < k; ++j) {
    const HostId lm = landmarks_[j];
    for (std::size_t h = 0; h < host_count_; ++h)
      // ace-id: boundary(dense iteration over the physical host table)
      coords_[h * k + j] =
          static_cast<float>(physical.delay(lm, HostId{
              static_cast<std::uint32_t>(h)}));
  }

  // Coordinates are frozen from here on; fingerprint them once.
  Fnv1a digest;
  digest.update(std::string_view{"oracle-landmark"});
  digest.update(static_cast<std::uint64_t>(host_count_));
  digest.update(static_cast<std::uint64_t>(k));
  for (const HostId lm : landmarks_) digest.update(lm);
  for (const float c : coords_)
    digest.update(static_cast<std::uint64_t>(std::bit_cast<std::uint32_t>(c)));
  state_digest_ = digest.value();
}

// ace-hot
Weight LandmarkOracle::delay(HostId a, HostId b) const {
  if (a.value() >= host_count_ || b.value() >= host_count_)
    throw std::out_of_range{"LandmarkOracle::delay: host out of range"};
  if (a == b) return 0.0;
  const std::size_t k = landmarks_.size();
  return triangulated_delay(
      std::span<const float>{coords_.data() + a.value() * k, k},
      std::span<const float>{coords_.data() + b.value() * k, k});
}

void LandmarkOracle::delays_from(HostId source,
                                 std::span<const HostId> targets,
                                 std::span<float> out) const {
  if (out.size() != targets.size())
    throw std::invalid_argument{
        "LandmarkOracle::delays_from: out.size() != targets.size()"};
  for (std::size_t i = 0; i < targets.size(); ++i)
    out[i] = static_cast<float>(delay(source, targets[i]));
}

std::string LandmarkOracle::spec() const {
  return "landmark:" + std::to_string(landmarks_.size());
}

std::size_t LandmarkOracle::memory_bytes() const noexcept {
  return coords_.capacity() * sizeof(float) +
         landmarks_.capacity() * sizeof(HostId);
}

void LandmarkOracle::digest_into(Fnv1a& digest) const {
  digest.update(state_digest_);
}

std::span<const float> LandmarkOracle::coordinates(HostId host) const {
  if (host.value() >= host_count_)
    throw std::out_of_range{"LandmarkOracle::coordinates: host out of range"};
  const std::size_t k = landmarks_.size();
  return {coords_.data() + host.value() * k, k};
}

}  // namespace ace
