#include "oracle/cost_oracle.h"

#include <charconv>
#include <stdexcept>

#include "oracle/exact_oracle.h"
#include "oracle/landmark_oracle.h"
#include "oracle/vivaldi_oracle.h"

namespace ace {

const char* oracle_kind_name(OracleKind kind) noexcept {
  switch (kind) {
    case OracleKind::kExact:
      return "exact";
    case OracleKind::kLandmark:
      return "landmark";
    case OracleKind::kVivaldi:
      return "vivaldi";
  }
  return "?";
}

namespace {

// Parses the `:`-separated positive integers after the kind name.
std::vector<std::size_t> parse_params(const std::string& spec,
                                      std::size_t start) {
  std::vector<std::size_t> params;
  std::size_t pos = start;
  while (pos < spec.size()) {
    if (spec[pos] != ':')
      throw std::invalid_argument{"parse_oracle_spec: malformed '" + spec +
                                  "'"};
    ++pos;
    std::size_t value = 0;
    const auto [ptr, ec] = std::from_chars(
        spec.data() + pos, spec.data() + spec.size(), value);
    if (ec != std::errc{} || value == 0)
      throw std::invalid_argument{
          "parse_oracle_spec: expected positive integer in '" + spec + "'"};
    params.push_back(value);
    pos = static_cast<std::size_t>(ptr - spec.data());
  }
  return params;
}

}  // namespace

OracleConfig parse_oracle_spec(const std::string& spec) {
  OracleConfig config;
  if (spec == "exact" || spec.empty()) {
    config.kind = OracleKind::kExact;
    return config;
  }
  const std::string landmark = "landmark";
  const std::string vivaldi = "vivaldi";
  if (spec.compare(0, landmark.size(), landmark) == 0 &&
      (spec.size() == landmark.size() || spec[landmark.size()] == ':')) {
    config.kind = OracleKind::kLandmark;
    const auto params = parse_params(spec, landmark.size());
    if (params.size() > 1)
      throw std::invalid_argument{"parse_oracle_spec: landmark takes at "
                                  "most one parameter (landmark:K)"};
    if (!params.empty()) config.landmarks = params[0];
    return config;
  }
  if (spec.compare(0, vivaldi.size(), vivaldi) == 0 &&
      (spec.size() == vivaldi.size() || spec[vivaldi.size()] == ':')) {
    config.kind = OracleKind::kVivaldi;
    const auto params = parse_params(spec, vivaldi.size());
    if (params.size() > 3)
      throw std::invalid_argument{"parse_oracle_spec: vivaldi takes at most "
                                  "three parameters (vivaldi:D[:R[:P]])"};
    if (params.size() > 0) config.vivaldi_dims = params[0];
    if (params.size() > 1) config.vivaldi_rounds = params[1];
    if (params.size() > 2) config.vivaldi_pivots = params[2];
    return config;
  }
  throw std::invalid_argument{
      "parse_oracle_spec: unknown oracle '" + spec +
      "' (expected exact, landmark:K, or vivaldi:D)"};
}

std::string oracle_spec(const OracleConfig& config) {
  switch (config.kind) {
    case OracleKind::kExact:
      return "exact";
    case OracleKind::kLandmark:
      return "landmark:" + std::to_string(config.landmarks);
    case OracleKind::kVivaldi:
      return "vivaldi:" + std::to_string(config.vivaldi_dims);
  }
  return "?";
}

void append_oracle_provenance(ProvenanceEntries& entries,
                              const OracleConfig& config) {
  if (config.kind == OracleKind::kExact) return;  // byte-identical exact runs
  entries.emplace_back("oracle", oracle_spec(config));
  if (config.kind == OracleKind::kVivaldi) {
    entries.emplace_back("oracle-rounds",
                         std::to_string(config.vivaldi_rounds));
    entries.emplace_back("oracle-pivots",
                         std::to_string(config.vivaldi_pivots));
  }
}

std::unique_ptr<CostOracle> make_cost_oracle(const PhysicalNetwork& physical,
                                             const OracleConfig& config,
                                             std::uint64_t seed) {
  switch (config.kind) {
    case OracleKind::kExact:
      return std::make_unique<ExactOracle>(physical);
    case OracleKind::kLandmark:
      return std::make_unique<LandmarkOracle>(physical, config.landmarks,
                                              seed);
    case OracleKind::kVivaldi: {
      VivaldiConfig vivaldi;
      vivaldi.dims = config.vivaldi_dims;
      vivaldi.rounds = config.vivaldi_rounds;
      vivaldi.pivots_per_round = config.vivaldi_pivots;
      return std::make_unique<VivaldiOracle>(physical, vivaldi, seed);
    }
  }
  throw std::invalid_argument{"make_cost_oracle: unknown kind"};
}

}  // namespace ace
