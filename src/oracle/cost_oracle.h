// Pluggable cost oracle: the subsystem that answers "what does it cost to
// send one message between hosts A and B?" for everything a peer *decides*
// with — neighbor cost tables, closure pair probes, phase-3 candidate
// evaluation, baseline rewiring. The exact answer is a Dijkstra row over the
// physical topology (net/physical_network.h), which caps practical scale at
// ~10^4 peers: every fresh source costs one full shortest-path run and one
// dense row of memory. Real Gnutella-scale networks estimate proximity
// instead (landmark triangulation, Vivaldi-style coordinate embeddings), so
// the oracle is an interface with three implementations:
//
//   ExactOracle     — wraps PhysicalNetwork's CSR-Dijkstra row cache;
//                     byte-identical to querying the network directly.
//   LandmarkOracle  — K landmark hosts, one Dijkstra row per landmark; a
//                     host's coordinate is its delay vector to the
//                     landmarks, estimates by triangulation. O(K*N) memory.
//   VivaldiOracle   — D-dimensional coordinates refined against a fixed,
//                     seeded pivot-probe schedule. O(D*N) memory.
//
// Determinism contract: an oracle is a pure function of (physical topology,
// config, seed) frozen at construction. All randomness comes from the named
// stream Rng::stream(seed, "oracle"), so attaching an oracle never perturbs
// churn/workload/ace draw sequences, and digest_into() lets approximate
// runs be double-run byte-identical (the engine digests the oracle as the
// "cost-oracle" StateDigest component whenever one is attached). See
// DESIGN.md §14.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "graph/graph.h"
#include "util/digest.h"
#include "util/provenance.h"
#include "util/strong_id.h"

namespace ace {

class PhysicalNetwork;

enum class OracleKind : std::uint8_t { kExact, kLandmark, kVivaldi };

const char* oracle_kind_name(OracleKind kind) noexcept;

// Everything that shapes an oracle, parseable from the CLI spec
// `exact | landmark:K | vivaldi:D` (the `--oracle=` flag).
struct OracleConfig {
  OracleKind kind = OracleKind::kExact;
  // landmark:K — number of landmark hosts (Dijkstra rows computed once).
  std::size_t landmarks = 16;
  // vivaldi:D — embedding dimensions.
  std::size_t vivaldi_dims = 4;
  // Refinement schedule: rounds x pivots exact rows drive the embedding.
  std::size_t vivaldi_rounds = 12;
  std::size_t vivaldi_pivots = 8;
};

// Parses `exact`, `landmark:K`, `vivaldi:D` (and the long forms
// `vivaldi:D:R:P` for rounds/pivots). Throws std::invalid_argument on
// malformed specs.
OracleConfig parse_oracle_spec(const std::string& spec);

// Canonical spec string for a config ("exact", "landmark:16", "vivaldi:4").
std::string oracle_spec(const OracleConfig& config);

// Appends the `oracle` provenance entry (plus schedule knobs for vivaldi).
// Deliberately appends NOTHING for kExact: exact runs must emit
// byte-identical CSVs and digest traces to builds that predate the oracle
// subsystem.
void append_oracle_provenance(ProvenanceEntries& entries,
                              const OracleConfig& config);

// Interface. Estimates are symmetric, finite, >= 0, and exactly 0 for
// a == b; they are frozen at construction (const-only queries), so one
// oracle can serve a whole trial without locking (same one-trial-one-thread
// contract as PhysicalNetwork).
class CostOracle {
 public:
  virtual ~CostOracle() = default;

  // Estimated one-way delay between two hosts. Throws std::out_of_range
  // for ids outside the physical topology.
  virtual Weight delay(HostId a, HostId b) const = 0;

  // Batch estimate: out[i] = delay(source, targets[i]). Requires
  // out.size() == targets.size(). The batch form lets implementations
  // amortize per-source work (the exact oracle touches its row cache once).
  virtual void delays_from(HostId source, std::span<const HostId> targets,
                           std::span<float> out) const = 0;

  virtual OracleKind kind() const noexcept = 0;

  // Round-trips through parse_oracle_spec (CSV/JSON provenance value).
  virtual std::string spec() const = 0;

  // Bytes of estimation state this oracle holds (coordinates, cached
  // rows). The scale bench reports this next to process peak RSS: the
  // approximate oracles stay O(K*N)/O(D*N) where exact row caching is
  // O(rows * N).
  virtual std::size_t memory_bytes() const noexcept = 0;

  // Digest of the frozen estimation state (landmark sets, coordinates).
  // Two runs of the same (topology, config, seed) must digest equal —
  // that is what makes lossy/approximate runs reproducible.
  virtual void digest_into(Fnv1a& digest) const = 0;
};

// Factory: builds the configured oracle over `physical` (which must outlive
// the oracle). Approximate oracles draw from Rng::stream(seed, "oracle").
std::unique_ptr<CostOracle> make_cost_oracle(const PhysicalNetwork& physical,
                                             const OracleConfig& config,
                                             std::uint64_t seed);

}  // namespace ace
