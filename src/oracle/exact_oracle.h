// ExactOracle: the CostOracle that IS the physical network. Every query
// delegates to PhysicalNetwork's lazily-cached CSR-Dijkstra rows, so values
// (and the row-cache behaviour behind them) are byte-identical to calling
// PhysicalNetwork::delay directly — attaching it to an overlay changes no
// protocol-visible state. It exists so the scale bench and the `--oracle`
// plumbing can treat "ground truth" as just another oracle.
#pragma once

#include "net/physical_network.h"
#include "oracle/cost_oracle.h"

namespace ace {

class ExactOracle final : public CostOracle {
 public:
  // `physical` must outlive the oracle (non-owning).
  explicit ExactOracle(const PhysicalNetwork& physical) noexcept
      : physical_{&physical} {}

  const PhysicalNetwork& physical() const noexcept { return *physical_; }

  // ace-hot
  Weight delay(HostId a, HostId b) const override {
    return physical_->delay(a, b);
  }

  // One row-cache touch for the source, then a flat gather.
  void delays_from(HostId source, std::span<const HostId> targets,
                   std::span<float> out) const override;

  OracleKind kind() const noexcept override { return OracleKind::kExact; }
  std::string spec() const override { return "exact"; }

  // The exact oracle's estimation state is the row cache it queries; its
  // footprint grows with the distinct-source working set (bytes-per-row x
  // rows), which is the linear-per-source cost the approximate oracles
  // avoid.
  std::size_t memory_bytes() const noexcept override {
    return physical_->row_cache_stats().bytes;
  }

  void digest_into(Fnv1a& digest) const override;

 private:
  const PhysicalNetwork* physical_;
};

}  // namespace ace
