#include "oracle/vivaldi_oracle.h"

#include <bit>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace ace {

namespace {

// Euclidean distance between two D-dim coordinate rows, in double so the
// spring update below is not starved of precision by float rounding.
// ace-hot
double embedding_distance(const float* a, const float* b, std::size_t dims) {
  double sum = 0.0;
  for (std::size_t d = 0; d < dims; ++d) {
    const double diff = static_cast<double>(a[d]) - static_cast<double>(b[d]);
    sum += diff * diff;
  }
  return std::sqrt(sum);
}

}  // namespace

VivaldiOracle::VivaldiOracle(const PhysicalNetwork& physical,
                             const VivaldiConfig& config, std::uint64_t seed)
    : config_{config}, host_count_{physical.host_count()} {
  if (config_.dims == 0)
    throw std::invalid_argument{"VivaldiOracle: need at least one dimension"};
  if (config_.rounds == 0 || config_.pivots_per_round == 0)
    throw std::invalid_argument{
        "VivaldiOracle: need a non-empty probe schedule"};
  if (host_count_ == 0)
    throw std::invalid_argument{"VivaldiOracle: empty physical network"};

  const std::size_t dims = config_.dims;
  Rng rng = Rng::stream(seed, "oracle");

  // Seeded non-degenerate start: coordinates uniform in [-1, 1)^D.
  coords_.resize(host_count_ * dims);
  for (float& c : coords_)
    c = static_cast<float>(rng.uniform_real(-1.0, 1.0));

  // Fixed probe schedule: each round draws P pivots, measures one exact row
  // per pivot, and spring-relaxes every host toward rtt-consistent
  // distances. Host iteration is dense id order — no history-dependent
  // ordering anywhere, so the embedding is a pure function of
  // (topology, config, seed).
  const std::size_t pivots = std::min(config_.pivots_per_round, host_count_);
  std::vector<float> row(host_count_);
  std::vector<HostId> targets;
  targets.reserve(host_count_);
  for (std::size_t h = 0; h < host_count_; ++h)
    // ace-id: boundary(dense iteration over the physical host table)
    targets.push_back(HostId{static_cast<std::uint32_t>(h)});

  for (std::size_t round = 0; round < config_.rounds; ++round) {
    const double step = 0.25 / static_cast<double>(1 + round);
    for (const std::size_t p : rng.sample_indices(host_count_, pivots)) {
      // ace-id: boundary(sampled index ranges over the physical host table)
      const HostId pivot{static_cast<std::uint32_t>(p)};
      for (std::size_t h = 0; h < host_count_; ++h)
        row[h] = static_cast<float>(physical.delay(pivot, targets[h]));

      const float* pivot_coord = coords_.data() + p * dims;
      for (std::size_t h = 0; h < host_count_; ++h) {
        if (h == p) continue;
        float* host_coord = coords_.data() + h * dims;
        const double dist = embedding_distance(host_coord, pivot_coord, dims);
        const double rtt = static_cast<double>(row[h]);
        if (dist > 0.0) {
          // Spring force along the pivot->host direction: expand when the
          // embedding underestimates the measured delay, contract when it
          // overestimates.
          const double force = step * (rtt - dist) / dist;
          for (std::size_t d = 0; d < dims; ++d) {
            const double axis = static_cast<double>(host_coord[d]) -
                                static_cast<double>(pivot_coord[d]);
            host_coord[d] += static_cast<float>(force * axis);
          }
        } else {
          // Coincident points have no direction; displace along the first
          // axis so the pair can separate (deterministic tie-break).
          host_coord[0] += static_cast<float>(step * rtt);
        }
      }
    }
  }

  Fnv1a digest;
  digest.update(std::string_view{"oracle-vivaldi"});
  digest.update(static_cast<std::uint64_t>(host_count_));
  digest.update(static_cast<std::uint64_t>(dims));
  digest.update(static_cast<std::uint64_t>(config_.rounds));
  digest.update(static_cast<std::uint64_t>(config_.pivots_per_round));
  for (const float c : coords_)
    digest.update(static_cast<std::uint64_t>(std::bit_cast<std::uint32_t>(c)));
  state_digest_ = digest.value();
}

// ace-hot
Weight VivaldiOracle::delay(HostId a, HostId b) const {
  if (a.value() >= host_count_ || b.value() >= host_count_)
    throw std::out_of_range{"VivaldiOracle::delay: host out of range"};
  if (a == b) return 0.0;
  const std::size_t dims = config_.dims;
  return embedding_distance(coords_.data() + a.value() * dims,
                            coords_.data() + b.value() * dims, dims);
}

void VivaldiOracle::delays_from(HostId source, std::span<const HostId> targets,
                                std::span<float> out) const {
  if (out.size() != targets.size())
    throw std::invalid_argument{
        "VivaldiOracle::delays_from: out.size() != targets.size()"};
  for (std::size_t i = 0; i < targets.size(); ++i)
    out[i] = static_cast<float>(delay(source, targets[i]));
}

std::string VivaldiOracle::spec() const {
  return "vivaldi:" + std::to_string(config_.dims);
}

std::size_t VivaldiOracle::memory_bytes() const noexcept {
  return coords_.capacity() * sizeof(float);
}

void VivaldiOracle::digest_into(Fnv1a& digest) const {
  digest.update(state_digest_);
}

std::span<const float> VivaldiOracle::coordinates(HostId host) const {
  if (host.value() >= host_count_)
    throw std::out_of_range{"VivaldiOracle::coordinates: host out of range"};
  const std::size_t dims = config_.dims;
  return {coords_.data() + host.value() * dims, dims};
}

}  // namespace ace
