// Landmark triangulation oracle. K landmark hosts are drawn once from the
// seeded "oracle" stream; each costs exactly one Dijkstra row, and every
// host's coordinate is its delay vector to the landmarks (K floats). A
// pairwise delay is estimated from the triangle inequality: the landmark
// delays bound the true delay to [max_i |a_i - b_i|, min_i (a_i + b_i)],
// and the estimate is the midpoint of that interval. Total estimation state
// is O(K*N) — sublinear in the O(N^2) pair space — which is what lets the
// scale bench answer million-host cost queries without dense rows.
//
// The coordinate/distance primitives (landmark_coordinates,
// coordinate_distance) live here and are shared with the landmark overlay
// baseline (baselines/landmark.h): the baseline clusters peers by the same
// coordinates this oracle triangulates with, so there is one implementation
// to test, not two to drift.
#pragma once

#include <cstdint>
#include <vector>

#include "net/physical_network.h"
#include "oracle/cost_oracle.h"

namespace ace {

// Coordinates of every peer: delay to each landmark host.
std::vector<std::vector<Weight>> landmark_coordinates(
    const PhysicalNetwork& physical, std::span<const HostId> peer_hosts,
    std::span<const HostId> landmark_hosts);

// Euclidean distance between two landmark coordinate vectors.
double coordinate_distance(std::span<const Weight> a,
                           std::span<const Weight> b);

// Triangulated delay estimate from two landmark coordinate vectors:
// midpoint of the triangle-inequality interval
// [max_i |a_i - b_i|, min_i (a_i + b_i)]. Requires a.size() == b.size() > 0.
// Hot path (tagged ace-hot at the definition): allocation-free.
Weight triangulated_delay(std::span<const float> a, std::span<const float> b);

class LandmarkOracle final : public CostOracle {
 public:
  // Draws `landmarks` distinct landmark hosts from
  // Rng::stream(seed, "oracle") and freezes every host's coordinate.
  // `physical` must outlive the oracle; construction computes one Dijkstra
  // row per landmark (and nothing else). Throws std::invalid_argument when
  // landmarks is 0 or exceeds the host count.
  LandmarkOracle(const PhysicalNetwork& physical, std::size_t landmarks,
                 std::uint64_t seed);

  // Hot path (tagged ace-hot at the definition): allocation-free.
  Weight delay(HostId a, HostId b) const override;

  void delays_from(HostId source, std::span<const HostId> targets,
                   std::span<float> out) const override;

  OracleKind kind() const noexcept override { return OracleKind::kLandmark; }
  std::string spec() const override;
  std::size_t memory_bytes() const noexcept override;
  void digest_into(Fnv1a& digest) const override;

  // Frozen state, exposed for tests and the scale bench.
  std::span<const HostId> landmark_hosts() const noexcept {
    return landmarks_;
  }
  std::span<const float> coordinates(HostId host) const;

 private:
  // ace-digest: exempt(host_count_): folded into state_digest_ at
  // construction; all members below are frozen from then on.
  std::size_t host_count_;
  // ace-digest: exempt(landmarks_): folded into state_digest_ at
  // construction (frozen).
  std::vector<HostId> landmarks_;
  // Host-major: coordinates of host h are coords_[h*K .. h*K+K).
  // ace-digest: exempt(coords_): folded into state_digest_ at construction
  // (frozen); caching keeps digest_into O(1) instead of O(K*N).
  std::vector<float> coords_;
  std::uint64_t state_digest_;
};

}  // namespace ace
